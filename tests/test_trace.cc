/**
 * @file
 * Tests for full-scale trace construction: dense analytics, the SEC
 * token schedule, psi mapping, baseline keep propagation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/trace.h"

namespace focus
{
namespace
{

FunctionalAggregate
flatAggregate(int layers, double keep, double psi)
{
    FunctionalAggregate agg;
    agg.reduced_layers = layers;
    agg.keep_in.assign(static_cast<size_t>(layers), keep);
    agg.keep_out.assign(static_cast<size_t>(layers), keep);
    agg.psi_qkv.assign(static_cast<size_t>(layers), psi);
    agg.psi_oproj.assign(static_cast<size_t>(layers), psi);
    agg.psi_ffn.assign(static_cast<size_t>(layers), psi);
    agg.psi_down.assign(static_cast<size_t>(layers), psi);
    return agg;
}

TEST(Trace, DenseMacsMatchAnalytic)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    ASSERT_EQ(static_cast<int64_t>(tr.layers.size()), mp.full_layers);

    const double rows = static_cast<double>(dp.full_visual_tokens +
                                            dp.full_text_tokens);
    const double d = static_cast<double>(mp.full_hidden);
    const double inner = static_cast<double>(mp.full_ffn_inner);
    const double per_layer = 3 * rows * d * d + 2 * rows * rows * d +
        rows * d * d + 2 * rows * d * inner + rows * inner * d;
    EXPECT_NEAR(tr.totalMacs(),
                per_layer * static_cast<double>(mp.full_layers),
                1e-6 * tr.totalMacs());
}

TEST(Trace, FocusFollowsRetentionSchedule)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 0.5);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);

    const int64_t m = dp.full_visual_tokens;
    EXPECT_EQ(tr.layers[0].visual_in, m);
    EXPECT_EQ(tr.layers[2].visual_out, m);
    // Layer 3 prunes to 40%.
    EXPECT_EQ(tr.layers[3].visual_out,
              static_cast<int64_t>(std::llround(0.40 * m)));
    EXPECT_EQ(tr.layers[3].sec_topk, tr.layers[3].visual_out);
    EXPECT_EQ(tr.layers[9].visual_out,
              static_cast<int64_t>(std::llround(0.20 * m)));
    EXPECT_EQ(tr.layers[26].visual_out,
              static_cast<int64_t>(std::llround(0.10 * m)));
    // No pruning events besides the schedule.
    EXPECT_EQ(tr.layers[10].sec_topk, 0);
}

TEST(Trace, FocusSparsityInPaperBand)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.55);
    const WorkloadTrace focus =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    const WorkloadTrace dense = buildDenseTrace(mp, dp);
    const double sparsity = 1.0 - focus.totalMacs() / dense.totalMacs();
    EXPECT_GT(sparsity, 0.75);
    EXPECT_LT(sparsity, 0.92);
}

TEST(Trace, BaselineKeepAppliesAtInput)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 0.5, 1.0);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::cmcBaseline(), agg);
    const int64_t expect = static_cast<int64_t>(
        std::llround(0.5 * dp.full_visual_tokens));
    EXPECT_EQ(tr.visual0, expect);
    for (const LayerEvents &l : tr.layers) {
        EXPECT_EQ(l.visual_in, expect);
        EXPECT_EQ(l.visual_out, expect);
        EXPECT_EQ(l.sec_topk, 0);
    }
}

TEST(Trace, PsiAppearsOnlyWithSic)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.4);

    const WorkloadTrace focus =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    bool saw_psi = false;
    for (const GemmEvent &g : focus.layers[5].gemms) {
        if (g.psi_in < 1.0) {
            saw_psi = true;
        }
    }
    EXPECT_TRUE(saw_psi);

    const WorkloadTrace sec_only =
        buildTrace(mp, dp, MethodConfig::focusSecOnly(), agg);
    for (const LayerEvents &l : sec_only.layers) {
        for (const GemmEvent &g : l.gemms) {
            EXPECT_DOUBLE_EQ(g.psi_in, 1.0);
            EXPECT_FALSE(g.gather_out);
        }
    }
}

TEST(Trace, QkvAtLayerZeroIsDense)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.4);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    EXPECT_DOUBLE_EQ(tr.layers[0].gemms[0].psi_in, 1.0);
    EXPECT_LT(tr.layers[1].gemms[0].psi_in, 1.0);
}

TEST(Trace, GemmDimsConsistent)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    for (const LayerEvents &l : tr.layers) {
        ASSERT_EQ(l.gemms.size(), 6u);
        const GemmEvent &qk = l.gemms[1];
        EXPECT_EQ(qk.site, GemmSite::Qk);
        EXPECT_EQ(qk.m, l.rowsIn());
        EXPECT_EQ(qk.n, l.rowsIn());
        EXPECT_EQ(qk.k, mp.full_head_dim);
        EXPECT_EQ(qk.count, static_cast<int>(mp.full_heads));
        const GemmEvent &down = l.gemms[5];
        EXPECT_EQ(down.k, mp.full_ffn_inner);
        EXPECT_EQ(down.n, mp.full_hidden);
    }
}

TEST(Trace, SiteNamesResolve)
{
    EXPECT_STREQ(gemmSiteName(GemmSite::Qkv), "qkv");
    EXPECT_STREQ(gemmSiteName(GemmSite::Down), "down");
}

} // namespace
} // namespace focus
