/**
 * @file
 * Tests for full-scale trace construction: dense analytics, the SEC
 * token schedule, psi mapping, baseline keep propagation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/trace.h"

namespace focus
{
namespace
{

FunctionalAggregate
flatAggregate(int layers, double keep, double psi)
{
    FunctionalAggregate agg;
    agg.reduced_layers = layers;
    agg.keep_in.assign(static_cast<size_t>(layers), keep);
    agg.keep_out.assign(static_cast<size_t>(layers), keep);
    agg.psi_qkv.assign(static_cast<size_t>(layers), psi);
    agg.psi_oproj.assign(static_cast<size_t>(layers), psi);
    agg.psi_ffn.assign(static_cast<size_t>(layers), psi);
    agg.psi_down.assign(static_cast<size_t>(layers), psi);
    return agg;
}

TEST(Trace, DenseMacsMatchAnalytic)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    ASSERT_EQ(static_cast<int64_t>(tr.layers.size()), mp.full_layers);

    const double rows = static_cast<double>(dp.full_visual_tokens +
                                            dp.full_text_tokens);
    const double d = static_cast<double>(mp.full_hidden);
    const double inner = static_cast<double>(mp.full_ffn_inner);
    const double per_layer = 3 * rows * d * d + 2 * rows * rows * d +
        rows * d * d + 2 * rows * d * inner + rows * inner * d;
    EXPECT_NEAR(tr.totalMacs(),
                per_layer * static_cast<double>(mp.full_layers),
                1e-6 * tr.totalMacs());
}

TEST(Trace, FocusFollowsRetentionSchedule)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 0.5);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);

    const int64_t m = dp.full_visual_tokens;
    EXPECT_EQ(tr.layers[0].visual_in, m);
    EXPECT_EQ(tr.layers[2].visual_out, m);
    // Layer 3 prunes to 40%.
    EXPECT_EQ(tr.layers[3].visual_out,
              static_cast<int64_t>(std::llround(0.40 * m)));
    EXPECT_EQ(tr.layers[3].sec_topk, tr.layers[3].visual_out);
    EXPECT_EQ(tr.layers[9].visual_out,
              static_cast<int64_t>(std::llround(0.20 * m)));
    EXPECT_EQ(tr.layers[26].visual_out,
              static_cast<int64_t>(std::llround(0.10 * m)));
    // No pruning events besides the schedule.
    EXPECT_EQ(tr.layers[10].sec_topk, 0);
}

TEST(Trace, FocusSparsityInPaperBand)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.55);
    const WorkloadTrace focus =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    const WorkloadTrace dense = buildDenseTrace(mp, dp);
    const double sparsity = 1.0 - focus.totalMacs() / dense.totalMacs();
    EXPECT_GT(sparsity, 0.75);
    EXPECT_LT(sparsity, 0.92);
}

TEST(Trace, BaselineKeepAppliesAtInput)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 0.5, 1.0);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::cmcBaseline(), agg);
    const int64_t expect = static_cast<int64_t>(
        std::llround(0.5 * dp.full_visual_tokens));
    EXPECT_EQ(tr.visual0, expect);
    for (const LayerEvents &l : tr.layers) {
        EXPECT_EQ(l.visual_in, expect);
        EXPECT_EQ(l.visual_out, expect);
        EXPECT_EQ(l.sec_topk, 0);
    }
}

TEST(Trace, PsiAppearsOnlyWithSic)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.4);

    const WorkloadTrace focus =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    bool saw_psi = false;
    for (const GemmEvent &g : focus.layers[5].gemms) {
        if (g.psi_in < 1.0) {
            saw_psi = true;
        }
    }
    EXPECT_TRUE(saw_psi);

    const WorkloadTrace sec_only =
        buildTrace(mp, dp, MethodConfig::focusSecOnly(), agg);
    for (const LayerEvents &l : sec_only.layers) {
        for (const GemmEvent &g : l.gemms) {
            EXPECT_DOUBLE_EQ(g.psi_in, 1.0);
            EXPECT_FALSE(g.gather_out);
        }
    }
}

TEST(Trace, QkvAtLayerZeroIsDense)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.4);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    EXPECT_DOUBLE_EQ(tr.layers[0].gemms[0].psi_in, 1.0);
    EXPECT_LT(tr.layers[1].gemms[0].psi_in, 1.0);
}

TEST(Trace, GemmDimsConsistent)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    for (const LayerEvents &l : tr.layers) {
        ASSERT_EQ(l.gemms.size(), 6u);
        const GemmEvent &qk = l.gemms[1];
        EXPECT_EQ(qk.site, GemmSite::Qk);
        EXPECT_EQ(qk.m, l.rowsIn());
        EXPECT_EQ(qk.n, l.rowsIn());
        EXPECT_EQ(qk.k, mp.full_head_dim);
        EXPECT_EQ(qk.count, static_cast<int>(mp.full_heads));
        const GemmEvent &down = l.gemms[5];
        EXPECT_EQ(down.k, mp.full_ffn_inner);
        EXPECT_EQ(down.n, mp.full_hidden);
    }
}

TEST(Trace, SiteNamesResolve)
{
    EXPECT_STREQ(gemmSiteName(GemmSite::Qkv), "qkv");
    EXPECT_STREQ(gemmSiteName(GemmSite::Down), "down");
}

// ---- standalone construction invariants (previously only ----
// ---- exercised indirectly through the Evaluator benches)  ----

TEST(Trace, PerLayerMacsMatchAnalytic)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    const double d = static_cast<double>(mp.full_hidden);
    const double hd = static_cast<double>(mp.full_head_dim);
    const double h = static_cast<double>(mp.full_heads);
    const double inner = static_cast<double>(mp.full_ffn_inner);
    for (const LayerEvents &l : tr.layers) {
        const double rows = static_cast<double>(l.rowsIn());
        const double expect = 3 * rows * d * d +
            2 * h * rows * rows * hd + rows * d * d +
            2 * rows * d * inner + rows * inner * d;
        double got = 0.0;
        for (const GemmEvent &g : l.gemms) {
            got += g.macs();
        }
        EXPECT_NEAR(got, expect, 1e-9 * expect);
    }
}

TEST(Trace, SecRetentionScheduleMonotone)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 0.5);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    for (size_t l = 0; l < tr.layers.size(); ++l) {
        const LayerEvents &le = tr.layers[l];
        // Retention only shrinks the active set, never grows it.
        EXPECT_LE(le.visual_out, le.visual_in);
        // Active rows chain: this layer's survivors enter the next.
        if (l + 1 < tr.layers.size()) {
            EXPECT_EQ(tr.layers[l + 1].visual_in, le.visual_out);
        }
        // A pruning event records exactly the survivor count.
        if (le.sec_topk > 0) {
            EXPECT_EQ(le.sec_topk, le.visual_out);
            EXPECT_LT(le.visual_out, le.visual_in);
        } else {
            EXPECT_EQ(le.visual_out, le.visual_in);
        }
    }
}

TEST(Trace, ActiveRowCountsDriveGemmShapes)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 0.6);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    for (const LayerEvents &l : tr.layers) {
        ASSERT_EQ(l.gemms.size(), 6u);
        EXPECT_EQ(l.gemms[0].m, l.rowsIn());   // QKV
        EXPECT_EQ(l.gemms[1].m, l.rowsIn());   // QK
        EXPECT_EQ(l.gemms[2].m, l.rowsOut());  // PV: survivors only
        EXPECT_EQ(l.gemms[2].k, l.rowsIn());
        EXPECT_EQ(l.gemms[3].m, l.rowsOut());  // O-proj
        EXPECT_EQ(l.gemms[4].m, l.rowsOut());  // gate/up
        EXPECT_EQ(l.gemms[5].m, l.rowsOut());  // down
    }
}

TEST(Trace, RetainedRowsReflectsPruning)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 1.0);
    const WorkloadTrace dense = buildDenseTrace(mp, dp);
    const WorkloadTrace focus =
        buildTrace(mp, dp, MethodConfig::focusSecOnly(), agg);
    EXPECT_EQ(dense.retainedRows(),
              (dp.full_visual_tokens + dp.full_text_tokens) *
                  mp.full_layers);
    EXPECT_LT(focus.retainedRows(), dense.retainedRows());
}

// ---- batched trace fusion ----

TEST(TraceFusion, SingletonIsVerbatim)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg = flatAggregate(mp.layers, 1.0, 0.5);
    const WorkloadTrace tr =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    const WorkloadTrace fused = fuseTraces({&tr});
    EXPECT_EQ(fused.batch_size, 1);
    ASSERT_EQ(fused.layers.size(), tr.layers.size());
    EXPECT_EQ(fused.totalMacs(), tr.totalMacs());
    for (size_t l = 0; l < tr.layers.size(); ++l) {
        EXPECT_TRUE(fused.layers[l].queries.empty());
        ASSERT_EQ(fused.layers[l].gemms.size(),
                  tr.layers[l].gemms.size());
        for (size_t g = 0; g < tr.layers[l].gemms.size(); ++g) {
            EXPECT_EQ(fused.layers[l].gemms[g].m,
                      tr.layers[l].gemms[g].m);
            EXPECT_EQ(fused.layers[l].gemms[g].psi_in,
                      tr.layers[l].gemms[g].psi_in);
        }
    }
}

TEST(TraceFusion, PreservesMacsAndRows)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.55);
    const WorkloadTrace a =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    const WorkloadTrace b = buildDenseTrace(mp, dp);
    const WorkloadTrace fused = fuseTraces({&a, &b});

    EXPECT_EQ(fused.batch_size, 2);
    const double sum = a.totalMacs() + b.totalMacs();
    EXPECT_NEAR(fused.totalMacs(), sum, 1e-9 * sum);
    EXPECT_EQ(fused.visual0, a.visual0 + b.visual0);
    EXPECT_EQ(fused.text, a.text + b.text);
    EXPECT_EQ(fused.retainedRows(),
              a.retainedRows() + b.retainedRows());

    ASSERT_EQ(fused.layers.size(), a.layers.size());
    for (size_t l = 0; l < fused.layers.size(); ++l) {
        const LayerEvents &fl = fused.layers[l];
        EXPECT_EQ(fl.visual_in,
                  a.layers[l].visual_in + b.layers[l].visual_in);
        // Per-request spans survive fusion.
        ASSERT_EQ(fl.queries.size(), 2u);
        EXPECT_EQ(fl.queries[0].visual_in, a.layers[l].visual_in);
        EXPECT_EQ(fl.queries[1].visual_in, b.layers[l].visual_in);
        EXPECT_EQ(fl.queries[0].sec_topk, a.layers[l].sec_topk);
        // 4 fused shared-weight events + 2 per-request QK + 2 PV.
        ASSERT_EQ(fl.gemms.size(), 8u);
        EXPECT_EQ(fl.gemms[0].site, GemmSite::Qkv);
        EXPECT_EQ(fl.gemms[0].m,
                  a.layers[l].rowsIn() + b.layers[l].rowsIn());
        EXPECT_EQ(fl.gemms[1].site, GemmSite::Qk);
        EXPECT_EQ(fl.gemms[1].m, a.layers[l].rowsIn());
        EXPECT_EQ(fl.gemms[2].site, GemmSite::Qk);
        EXPECT_EQ(fl.gemms[2].m, b.layers[l].rowsIn());
        EXPECT_EQ(fl.gemms[3].site, GemmSite::Pv);
        EXPECT_EQ(fl.gemms[4].site, GemmSite::Pv);
    }
    EXPECT_EQ(fused.method, "Focus+Dense");
}

TEST(TraceFusion, RowWeightedPsiAndGatherUnion)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.4);
    const WorkloadTrace sic =
        buildTrace(mp, dp, MethodConfig::focusSicOnly(), agg);
    const WorkloadTrace dense = buildDenseTrace(mp, dp);
    const WorkloadTrace fused = fuseTraces({&sic, &dense});

    const size_t l = 3;
    const GemmEvent &gs = sic.layers[l].gemms[0];   // QKV, psi < 1
    const GemmEvent &gd = dense.layers[l].gemms[0]; // QKV, psi = 1
    ASSERT_LT(gs.psi_in, 1.0);
    const GemmEvent &gf = fused.layers[l].gemms[0];
    const double expect =
        (static_cast<double>(gs.m) * gs.psi_in +
         static_cast<double>(gd.m) * gd.psi_in) /
        static_cast<double>(gs.m + gd.m);
    EXPECT_NEAR(gf.psi_in, expect, 1e-12);
    EXPECT_GT(gf.psi_in, gs.psi_in);
    EXPECT_LT(gf.psi_in, 1.0);

    // A gathered site stays gathered in the union; the dense share
    // weighs in at psi_out = 1 so write traffic is preserved.
    const GemmEvent &os = sic.layers[l].gemms[3];
    ASSERT_TRUE(os.gather_out);
    const GemmEvent &of = fused.layers[l].gemms[5]; // fused O-proj
    ASSERT_EQ(of.site, GemmSite::OProj);
    EXPECT_TRUE(of.gather_out);
    const double expect_out =
        (static_cast<double>(os.m) * os.psi_out +
         static_cast<double>(dense.layers[l].gemms[3].m) * 1.0) /
        static_cast<double>(os.m + dense.layers[l].gemms[3].m);
    EXPECT_NEAR(of.psi_out, expect_out, 1e-12);
}

TEST(TraceFusion, RefusingAFusedTraceFlattens)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.55);
    const WorkloadTrace a =
        buildTrace(mp, dp, MethodConfig::focusFull(), agg);
    const WorkloadTrace b = buildDenseTrace(mp, dp);
    const WorkloadTrace c =
        buildTrace(mp, dp, MethodConfig::focusSecOnly(), agg);

    const WorkloadTrace ab = fuseTraces({&a, &b});
    const WorkloadTrace grown = fuseTraces({&ab, &c});
    const WorkloadTrace flat = fuseTraces({&a, &b, &c});

    EXPECT_EQ(grown.batch_size, 3);
    EXPECT_NEAR(grown.totalMacs(), flat.totalMacs(),
                1e-9 * flat.totalMacs());
    ASSERT_EQ(grown.layers.size(), flat.layers.size());
    for (size_t l = 0; l < grown.layers.size(); ++l) {
        const LayerEvents &gl = grown.layers[l];
        const LayerEvents &fl = flat.layers[l];
        // Per-request spans and attention events stay flat: 4 fused
        // shared-weight events + 3 QK + 3 PV.
        ASSERT_EQ(gl.queries.size(), 3u);
        ASSERT_EQ(gl.gemms.size(), 10u);
        EXPECT_EQ(gl.visual_in, fl.visual_in);
        for (size_t q = 0; q < 3; ++q) {
            EXPECT_EQ(gl.queries[q].visual_in,
                      fl.queries[q].visual_in);
            EXPECT_EQ(gl.queries[q].sec_topk,
                      fl.queries[q].sec_topk);
        }
        for (size_t g = 0; g < gl.gemms.size(); ++g) {
            EXPECT_EQ(gl.gemms[g].site, fl.gemms[g].site);
            EXPECT_EQ(gl.gemms[g].m, fl.gemms[g].m);
            EXPECT_NEAR(gl.gemms[g].psi_in, fl.gemms[g].psi_in,
                        1e-12);
        }
    }
}

TEST(TraceFusionDeathTest, GeometryMismatchIsFatal)
{
    const DatasetProfile dp = datasetProfile("VideoMME");
    ModelProfile mp = modelProfile("Llava-Vid");
    const WorkloadTrace a = buildDenseTrace(mp, dp);
    mp.full_hidden = 4096;
    const WorkloadTrace b = buildDenseTrace(mp, dp);
    EXPECT_EXIT(fuseTraces({&a, &b}),
                ::testing::ExitedWithCode(1), "incompatible");
}

// ---- parallel splits (cluster sharding seam) ----

/** Focus trace with SIC psi — the hardest case for conservation. */
WorkloadTrace
focusTrace()
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const FunctionalAggregate agg =
        flatAggregate(mp.layers, 1.0, 0.55);
    return buildTrace(mp, dp, MethodConfig::focusFull(), agg);
}

TEST(TraceSplit, TensorParallelConservesWorkExactly)
{
    const WorkloadTrace tr = focusTrace();
    const TraceWork total = traceWork(tr);

    for (const int tp : {2, 3, 7}) {
        const std::vector<WorkloadTrace> shards =
            splitTensorParallel(tr, tp);
        ASSERT_EQ(shards.size(), static_cast<size_t>(tp));

        int64_t macs = 0, bytes = 0, heads = 0, inner = 0;
        double weighted = 0.0;
        for (int r = 0; r < tp; ++r) {
            const WorkloadTrace &sh = shards[static_cast<size_t>(r)];
            EXPECT_EQ(sh.tp_degree, tp);
            EXPECT_EQ(sh.tp_rank, r);
            EXPECT_EQ(sh.layers.size(), tr.layers.size());
            const TraceWork w = traceWork(sh);
            // Token rows replicate: every shard streams the full
            // activation set.
            EXPECT_EQ(w.retained_rows, total.retained_rows);
            macs += w.dense_macs;
            bytes += w.weight_bytes;
            weighted += w.weighted_macs;
            heads += sh.heads;
            inner += sh.ffn_inner;
        }
        // Integer quantities partition with no remainder lost.
        EXPECT_EQ(macs, total.dense_macs);
        EXPECT_EQ(bytes, total.weight_bytes);
        EXPECT_EQ(heads, tr.heads);
        EXPECT_EQ(inner, tr.ffn_inner);
        // psi-weighted MACs are floating point: only near-exact.
        EXPECT_NEAR(weighted, total.weighted_macs,
                    1e-9 * total.weighted_macs);
    }
}

TEST(TraceSplit, TensorParallelPartitionsEverySite)
{
    const WorkloadTrace tr = focusTrace();
    const int tp = 4;
    const std::vector<WorkloadTrace> shards =
        splitTensorParallel(tr, tp);
    for (size_t l = 0; l < tr.layers.size(); ++l) {
        const std::vector<GemmEvent> &full = tr.layers[l].gemms;
        for (size_t g = 0; g < full.size(); ++g) {
            int64_t n_sum = 0, k_sum = 0;
            int count_sum = 0;
            for (const WorkloadTrace &sh : shards) {
                const GemmEvent &e = sh.layers[l].gemms[g];
                EXPECT_EQ(e.site, full[g].site);
                EXPECT_EQ(e.m, full[g].m);
                n_sum += e.n;
                k_sum += e.k;
                count_sum += e.count;
            }
            switch (full[g].site) {
              case GemmSite::Qkv:
              case GemmSite::GateUp:
                // Column parallel: n partitions, k/count replicate.
                EXPECT_EQ(n_sum, full[g].n);
                EXPECT_EQ(k_sum, tp * full[g].k);
                EXPECT_EQ(count_sum, tp * full[g].count);
                break;
              case GemmSite::OProj:
              case GemmSite::Down:
                // Row parallel: k partitions, n/count replicate.
                EXPECT_EQ(k_sum, full[g].k);
                EXPECT_EQ(n_sum, tp * full[g].n);
                EXPECT_EQ(count_sum, tp * full[g].count);
                break;
              case GemmSite::Qk:
              case GemmSite::Pv:
                // Head parallel: count partitions, dims replicate.
                EXPECT_EQ(count_sum, full[g].count);
                EXPECT_EQ(n_sum, tp * full[g].n);
                EXPECT_EQ(k_sum, tp * full[g].k);
                break;
            }
        }
    }
}

TEST(TraceSplit, TensorParallelOfOneIsVerbatim)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dp);
    const std::vector<WorkloadTrace> shards =
        splitTensorParallel(tr, 1);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].tp_degree, 1);
    const TraceWork a = traceWork(tr);
    const TraceWork b = traceWork(shards[0]);
    EXPECT_EQ(a.dense_macs, b.dense_macs);
    EXPECT_EQ(a.weight_bytes, b.weight_bytes);
    EXPECT_EQ(a.retained_rows, b.retained_rows);
    EXPECT_EQ(a.weighted_macs, b.weighted_macs);
}

TEST(TraceSplit, DataParallelConservesRequestWork)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dsp = datasetProfile("VideoMME");
    const WorkloadTrace dense = buildDenseTrace(mp, dsp);
    const WorkloadTrace focus = focusTrace();
    const std::vector<const WorkloadTrace *> parts = {
        &focus, &dense, &focus, &focus, &dense};
    const TraceWork total = traceWork(fuseTraces(parts));

    for (const int dp : {2, 3, 5}) {
        const std::vector<WorkloadTrace> groups =
            splitDataParallel(parts, dp);
        ASSERT_EQ(groups.size(), static_cast<size_t>(dp));
        int64_t macs = 0, rows = 0;
        int batch = 0;
        double weighted = 0.0;
        for (const WorkloadTrace &g : groups) {
            const TraceWork w = traceWork(g);
            macs += w.dense_macs;
            rows += w.retained_rows;
            weighted += w.weighted_macs;
            batch += g.batch_size;
        }
        // Requests (and so MACs and rows) partition exactly;
        // weights replicate per engine group, so no byte assertion.
        EXPECT_EQ(batch, 5);
        EXPECT_EQ(macs, total.dense_macs);
        EXPECT_EQ(rows, total.retained_rows);
        EXPECT_NEAR(weighted, total.weighted_macs,
                    1e-9 * total.weighted_macs);
    }
}

TEST(TraceSplitDeathTest, InvalidSplitFactorsAreFatal)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dsp = datasetProfile("VideoMME");
    const WorkloadTrace tr = buildDenseTrace(mp, dsp);

    EXPECT_EXIT(splitTensorParallel(tr, 0),
                ::testing::ExitedWithCode(1), "invalid split factor");
    EXPECT_EXIT(splitTensorParallel(tr, -2),
                ::testing::ExitedWithCode(1), "invalid split factor");
    EXPECT_EXIT(
        splitTensorParallel(tr, static_cast<int>(tr.heads) + 1),
        ::testing::ExitedWithCode(1), "invalid split factor");

    const std::vector<const WorkloadTrace *> parts = {&tr, &tr};
    EXPECT_EXIT(splitDataParallel(parts, 0),
                ::testing::ExitedWithCode(1), "invalid split factor");
    EXPECT_EXIT(splitDataParallel(parts, 3),
                ::testing::ExitedWithCode(1), "invalid split factor");
}

} // namespace
} // namespace focus
