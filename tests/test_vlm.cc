/**
 * @file
 * Tests for the functional VLM model: determinism, op accounting,
 * SEC grounding (prompt-aware importance), SIC effects, INT8 mode.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "vlm/model.h"
#include "workload/video_gen.h"

namespace focus
{
namespace
{

struct Fixture
{
    DatasetProfile dp = datasetProfile("VideoMME");
    ModelProfile mp = modelProfile("Llava-Vid");
    VideoGenerator gen{dp, mp, 51};
    VlmModel model{mp, 52};
};

TEST(VlmModel, ForwardIsDeterministic)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(0);
    const ForwardResult a =
        fx.model.forward(s, MethodConfig::dense(), fx.gen.bank());
    const ForwardResult b =
        fx.model.forward(s, MethodConfig::dense(), fx.gen.bank());
    EXPECT_EQ(a.predicted_color, b.predicted_color);
    EXPECT_DOUBLE_EQ(a.ops, b.ops);
}

TEST(VlmModel, DenseOpsEqualMethodOpsForDense)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(1);
    const ForwardResult r =
        fx.model.forward(s, MethodConfig::dense(), fx.gen.bank());
    EXPECT_DOUBLE_EQ(r.ops, r.dense_ops);
    EXPECT_DOUBLE_EQ(r.sparsity(), 0.0);
    EXPECT_EQ(r.visual_initial, r.visual_original);
}

TEST(VlmModel, LayerRecordsTrackTokens)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(2);
    const ForwardResult r =
        fx.model.forward(s, MethodConfig::focusFull(), fx.gen.bank());
    ASSERT_EQ(static_cast<int>(r.layers.size()), fx.mp.layers);
    int64_t prev = r.visual_initial;
    for (const LayerRecord &rec : r.layers) {
        EXPECT_EQ(rec.visual_in, prev);
        EXPECT_LE(rec.visual_out, rec.visual_in);
        prev = rec.visual_out;
    }
    // The schedule ends at 15% retention on the reduced depth.
    const double final_keep = static_cast<double>(prev) /
        static_cast<double>(r.visual_original);
    EXPECT_LT(final_keep, 0.25);
    EXPECT_GT(final_keep, 0.05);
}

TEST(VlmModel, FocusSparsityPositiveAndPsiInRange)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(3);
    const ForwardResult r =
        fx.model.forward(s, MethodConfig::focusFull(), fx.gen.bank());
    EXPECT_GT(r.sparsity(), 0.4);
    for (const LayerRecord &rec : r.layers) {
        for (double psi : {rec.psi_qkv, rec.psi_oproj, rec.psi_ffn,
                           rec.psi_down}) {
            EXPECT_GT(psi, 0.0);
            EXPECT_LE(psi, 1.0);
        }
    }
    EXPECT_FALSE(r.layers[1].tile_fracs.empty());
}

TEST(VlmModel, SecOnlyHasUnitPsi)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(3);
    const ForwardResult r = fx.model.forward(
        s, MethodConfig::focusSecOnly(), fx.gen.bank());
    for (const LayerRecord &rec : r.layers) {
        EXPECT_DOUBLE_EQ(rec.psi_qkv, 1.0);
        EXPECT_DOUBLE_EQ(rec.psi_oproj, 1.0);
    }
    EXPECT_GT(r.sparsity(), 0.2);
}

TEST(VlmModel, SicOnlyKeepsAllTokens)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(4);
    const ForwardResult r = fx.model.forward(
        s, MethodConfig::focusSicOnly(), fx.gen.bank());
    for (const LayerRecord &rec : r.layers) {
        EXPECT_EQ(rec.visual_in, rec.visual_out);
    }
    EXPECT_GT(r.sparsity(), 0.05);
    EXPECT_LT(r.sparsity(), 0.9);
}

TEST(VlmModel, AblationOrdering)
{
    // SEC+SIC >= SEC-only and >= SIC-only in measured sparsity
    // (Fig. 11 structure).
    Fixture fx;
    const VideoSample s = fx.gen.sample(5);
    const double full =
        fx.model.forward(s, MethodConfig::focusFull(), fx.gen.bank())
            .sparsity();
    const double sec_only =
        fx.model
            .forward(s, MethodConfig::focusSecOnly(), fx.gen.bank())
            .sparsity();
    const double sic_only =
        fx.model
            .forward(s, MethodConfig::focusSicOnly(), fx.gen.bank())
            .sparsity();
    EXPECT_GT(full, sec_only);
    EXPECT_GT(full, sic_only);
}

TEST(VlmModel, AttentionHeatmapConcentratesOnTarget)
{
    // The Fig. 2(a) property: importance of tokens covering the
    // queried object type (target, or a same-type distractor when
    // the question is ambiguous) far exceeds the background average.
    Fixture fx;
    int wins = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
        const VideoSample s = fx.gen.sample(static_cast<uint64_t>(t));
        const std::vector<float> imp = fx.model.attentionHeatmap(s);
        std::vector<int64_t> grounded = s.relevant_tokens;
        grounded.insert(grounded.end(), s.distractor_tokens.begin(),
                        s.distractor_tokens.end());
        double relevant = 0.0;
        for (int64_t idx : grounded) {
            relevant = std::max(
                relevant,
                static_cast<double>(imp[static_cast<size_t>(idx)]));
        }
        const double overall =
            std::accumulate(imp.begin(), imp.end(), 0.0) /
            static_cast<double>(imp.size());
        wins += relevant > 4.0 * overall ? 1 : 0;
    }
    EXPECT_GE(wins, trials - 1);
}

TEST(VlmModel, SecRetainsRelevantTokens)
{
    // After the full retention schedule, the surviving set should
    // still cover the queried object for most samples.
    Fixture fx;
    int covered = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
        const VideoSample s = fx.gen.sample(static_cast<uint64_t>(t));
        const ForwardResult r = fx.model.forward(
            s, MethodConfig::focusFull(), fx.gen.bank());
        int hits = 0;
        for (int64_t orig : r.active_original) {
            if (std::find(s.relevant_tokens.begin(),
                          s.relevant_tokens.end(),
                          orig) != s.relevant_tokens.end()) {
                ++hits;
            }
        }
        covered += hits > 0 ? 1 : 0;
    }
    EXPECT_GE(covered, trials - 1);
}

TEST(VlmModel, Int8PerturbsButPreservesScale)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(6);
    MethodConfig fp16 = MethodConfig::focusFull();
    MethodConfig int8 = MethodConfig::focusFull();
    int8.int8 = true;
    const ForwardResult a = fx.model.forward(s, fp16, fx.gen.bank());
    const ForwardResult b = fx.model.forward(s, int8, fx.gen.bank());
    // Sparsity shifts only slightly under quantization (Tbl. IV).
    EXPECT_NEAR(a.sparsity(), b.sparsity(), 0.08);
}

TEST(VlmModel, ReadoutAttentionIsDistribution)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(7);
    const ForwardResult r =
        fx.model.forward(s, MethodConfig::dense(), fx.gen.bank());
    ASSERT_EQ(static_cast<int64_t>(r.readout_attention.size()),
              s.numVisual());
    double sum = 0.0;
    for (float w : r.readout_attention) {
        EXPECT_GE(w, 0.0f);
        sum += static_cast<double>(w);
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(VlmModel, BaselineMergingReducesTokens)
{
    Fixture fx;
    const VideoSample s = fx.gen.sample(8);
    for (const MethodConfig &m :
         {MethodConfig::adaptivBaseline(), MethodConfig::cmcBaseline(),
          MethodConfig::frameFusionBaseline()}) {
        const ForwardResult r = fx.model.forward(s, m, fx.gen.bank());
        EXPECT_LT(r.visual_initial, r.visual_original)
            << m.name();
        EXPECT_GT(r.sparsity(), 0.05) << m.name();
    }
}

TEST(VlmModel, TokenWiseSicRemovesLessThanVectorWise)
{
    Fixture fx;
    double vec = 0.0, tok = 0.0;
    for (int t = 0; t < 3; ++t) {
        const VideoSample s = fx.gen.sample(static_cast<uint64_t>(t));
        vec += fx.model
                   .forward(s, MethodConfig::focusFull(),
                            fx.gen.bank())
                   .sparsity();
        tok += fx.model
                   .forward(s, MethodConfig::focusTokenWise(),
                            fx.gen.bank())
                   .sparsity();
    }
    EXPECT_GE(vec, tok - 1e-6);
}

} // namespace
} // namespace focus
