/**
 * @file
 * Tests for the synthetic workload substrate: profiles, scenes,
 * sample generation, and the redundancy structure the concentration
 * methods rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "workload/profiles.h"
#include "workload/scene.h"
#include "workload/video_gen.h"

namespace focus
{
namespace
{

TEST(Profiles, KnownNamesResolve)
{
    for (const auto &name : videoDatasetNames()) {
        EXPECT_EQ(datasetProfile(name).name, name);
    }
    for (const auto &name : imageDatasetNames()) {
        EXPECT_EQ(datasetProfile(name).name, name);
        EXPECT_FALSE(datasetProfile(name).isVideo());
    }
    for (const auto &name : videoModelNames()) {
        EXPECT_EQ(modelProfile(name).name, name);
    }
}

TEST(Profiles, RetentionScheduleMatchesPaperAtFullDepth)
{
    const ModelProfile m = modelProfile("Llava-Vid");
    // Tbl. I: retain 40/30/20/15/10% at layers 3/6/9/18/26 of 28.
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(0, 28), 1.0);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(2, 28), 1.0);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(3, 28), 0.40);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(6, 28), 0.30);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(9, 28), 0.20);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(17, 28), 0.20);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(18, 28), 0.15);
    EXPECT_DOUBLE_EQ(m.retentionAfterLayer(26, 28), 0.10);
    EXPECT_TRUE(m.pruneAtLayer(3, 28));
    EXPECT_TRUE(m.pruneAtLayer(26, 28));
    EXPECT_FALSE(m.pruneAtLayer(4, 28));
}

TEST(Profiles, ReducedScheduleHasDistinctPruneEvents)
{
    const ModelProfile m = modelProfile("Llava-Vid");
    int events = 0;
    for (int l = 0; l < m.layers; ++l) {
        events += m.pruneAtLayer(l, m.layers) ? 1 : 0;
    }
    EXPECT_GE(events, 3);
}

TEST(PrototypeBank, DeterministicAndClassifiable)
{
    const PrototypeBank a(77), b(77);
    for (int c = 0; c < kNumColors; ++c) {
        EXPECT_EQ(a.color(c), b.color(c));
        // A prototype classifies as itself.
        EXPECT_EQ(a.classifyColor(a.color(c).data()), c);
    }
}

TEST(PrototypeBank, LiftTilesAcrossGroups)
{
    const PrototypeBank bank(5);
    const Tensor lifted = bank.liftToHidden(bank.type(0), 64);
    for (int g = 1; g < kNumGroups; ++g) {
        for (int i = 0; i < kGroupDim; ++i) {
            EXPECT_EQ(lifted(g * kGroupDim + i), lifted(i));
        }
    }
}

TEST(Scene, ObjectsStayInsideGrid)
{
    Rng rng(3);
    const PrototypeBank bank(3);
    const Scene s =
        makeScene(rng, bank, 8, 10, 10, 3, 0.8, 0.02, 0.5);
    for (const SceneObject &o : s.objects) {
        for (int f = 0; f < 8; ++f) {
            EXPECT_GT(o.centerY(f), -1.5);
            EXPECT_LT(o.centerY(f), 11.5);
        }
    }
}

TEST(Scene, DistractorSharesTypeNotColor)
{
    Rng rng(9);
    const PrototypeBank bank(9);
    int found = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const Scene s =
            makeScene(rng, bank, 4, 8, 8, 3, 0.5, 0.02, 1.0);
        if (s.distractor >= 0) {
            ++found;
            const auto &t = s.objects[s.target_object];
            const auto &d = s.objects[s.distractor];
            EXPECT_EQ(t.type_id, d.type_id);
            EXPECT_NE(t.color_id, d.color_id);
        }
    }
    EXPECT_GT(found, 15); // distractor_prob = 1.0, needs >= 2 objects
}

class VideoGenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(VideoGenTest, SampleShapesAndDeterminism)
{
    const DatasetProfile dp = datasetProfile(GetParam());
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 123);
    const VideoSample a = gen.sample(0);
    const VideoSample b = gen.sample(0);
    const VideoSample c = gen.sample(1);

    EXPECT_EQ(a.numVisual(),
              static_cast<int64_t>(dp.frames) * dp.grid_h * dp.grid_w);
    EXPECT_EQ(a.visual_tokens.cols(), mp.hidden);
    EXPECT_EQ(a.numText(), mp.text_tokens);
    EXPECT_EQ(static_cast<int64_t>(a.coords.size()), a.numVisual());
    EXPECT_FALSE(a.relevant_tokens.empty());
    EXPECT_GE(a.answer_color, 0);
    EXPECT_LT(a.answer_color, kNumColors);

    // Determinism: same index -> identical tokens.
    EXPECT_LT(maxAbsDiff(a.visual_tokens, b.visual_tokens), 1e-9);
    // Different index -> different scene.
    EXPECT_GT(maxAbsDiff(a.visual_tokens, c.visual_tokens), 1e-3);
}

TEST_P(VideoGenTest, CoordsAreFhwRaster)
{
    const DatasetProfile dp = datasetProfile(GetParam());
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 1);
    const VideoSample s = gen.sample(0);
    int64_t idx = 0;
    for (int f = 0; f < dp.frames; ++f) {
        for (int r = 0; r < dp.grid_h; ++r) {
            for (int c = 0; c < dp.grid_w; ++c, ++idx) {
                EXPECT_EQ(s.tokenIndex(f, r, c), idx);
                EXPECT_EQ(s.coords[static_cast<size_t>(idx)].f, f);
                EXPECT_EQ(s.coords[static_cast<size_t>(idx)].r, r);
                EXPECT_EQ(s.coords[static_cast<size_t>(idx)].c, c);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllVideoDatasets, VideoGenTest,
                         ::testing::Values("VideoMME", "MLVU",
                                           "MVBench", "VQAv2"));

TEST(VideoGen, TemporalRedundancyExists)
{
    // Same-position tokens in adjacent frames should be far more
    // similar than random token pairs — the redundancy all methods
    // exploit (Fig. 1(a)).
    const DatasetProfile dp = datasetProfile("VideoMME");
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 17);
    const VideoSample s = gen.sample(0);

    double temporal = 0.0;
    int n_t = 0;
    for (int r = 0; r < dp.grid_h; ++r) {
        for (int c = 0; c < dp.grid_w; ++c) {
            const int64_t i = s.tokenIndex(1, r, c);
            const int64_t j = s.tokenIndex(0, r, c);
            temporal += static_cast<double>(
                cosineSimilarity(s.visual_tokens.row(i),
                                 s.visual_tokens.row(j), mp.hidden));
            ++n_t;
        }
    }
    temporal /= n_t;

    Rng rng(4);
    double random_sim = 0.0;
    for (int k = 0; k < 200; ++k) {
        const int64_t i = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(s.numVisual())));
        const int64_t j = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(s.numVisual())));
        random_sim += static_cast<double>(
            cosineSimilarity(s.visual_tokens.row(i),
                             s.visual_tokens.row(j), mp.hidden));
    }
    random_sim /= 200.0;

    EXPECT_GT(temporal, 0.7);
    EXPECT_GT(temporal, random_sim + 0.2);
}

TEST(VideoGen, FinerVectorsShowMoreHighSimilarity)
{
    // The Fig. 2(b) property: the fraction of vector pairs above a
    // 0.9 cosine threshold grows as vector size shrinks.
    const DatasetProfile dp = datasetProfile("VideoMME");
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 23);
    const VideoSample s = gen.sample(0);

    auto frac_above = [&](int vec) {
        int64_t above = 0, total = 0;
        for (int r = 0; r < dp.grid_h; ++r) {
            for (int c = 0; c < dp.grid_w; ++c) {
                const float *a =
                    s.visual_tokens.row(s.tokenIndex(1, r, c));
                const float *b =
                    s.visual_tokens.row(s.tokenIndex(0, r, c));
                for (int v = 0; v + vec <= mp.hidden; v += vec) {
                    above += cosineSimilarity(a + v, b + v, vec) > 0.9f
                        ? 1 : 0;
                    ++total;
                }
            }
        }
        return static_cast<double>(above) /
            static_cast<double>(total);
    };

    const double f8 = frac_above(8);
    const double f64 = frac_above(64);
    EXPECT_GT(f8, f64);
}

TEST(VideoGen, QueryTokenCarriesTargetType)
{
    const DatasetProfile dp = datasetProfile("VideoMME");
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 31);
    const VideoSample s = gen.sample(0);
    const Tensor lifted =
        gen.bank().liftToHidden(gen.bank().type(s.target_type),
                                mp.hidden);
    const float sim = cosineSimilarity(
        s.text_tokens.row(s.query_token), lifted.data(), mp.hidden);
    EXPECT_GT(sim, 0.9f);
}

} // namespace
} // namespace focus
